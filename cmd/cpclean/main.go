// Command cpclean runs the CPClean cleaning loop on CSV data.
//
// Usage:
//
//	cpclean -dirty dirty.csv -truth truth.csv -val val.csv -test test.csv
//	        [-k 3] [-budget 0] [-random] [-seed 1] [-out cleaned.csv]
//
// All CSVs share a header whose last column is the integer label; missing
// cells are empty (or NA/?/null). -truth provides the ground-truth values
// the simulated human oracle reveals. With -random the baseline random-order
// cleaner runs instead. -out writes the final cleaned training table.
package main

import (
	"flag"
	"fmt"
	"os"

	"math/rand"

	"repro/internal/cleaning"
	"repro/internal/knn"
	"repro/internal/repair"
	"repro/internal/table"
)

func main() {
	dirtyPath := flag.String("dirty", "", "dirty training CSV (required)")
	truthPath := flag.String("truth", "", "ground-truth training CSV (required)")
	valPath := flag.String("val", "", "validation CSV (required)")
	testPath := flag.String("test", "", "test CSV (required)")
	k := flag.Int("k", 3, "K for the K-NN classifier")
	budget := flag.Int("budget", 0, "max examples to clean (0 = until all validation examples CP'ed)")
	random := flag.Bool("random", false, "use the RandomClean baseline instead of CPClean")
	seed := flag.Int64("seed", 1, "random seed (RandomClean)")
	outPath := flag.String("out", "", "write the cleaned training table to this CSV")
	maxCands := flag.Int("max-candidates", 125, "cap on candidates per row (Cartesian product)")
	flag.Parse()

	for name, v := range map[string]string{"dirty": *dirtyPath, "truth": *truthPath, "val": *valPath, "test": *testPath} {
		if v == "" {
			fatalf("missing required flag -%s", name)
		}
	}
	dirty := readTable(*dirtyPath)
	truth := readTable(*truthPath)
	val := readTable(*valPath)
	test := readTable(*testPath)

	task, err := cleaning.NewTask(dirty, truth, val, test, *k, knn.NegEuclidean{},
		repair.Options{MaxRowCandidates: *maxCands})
	if err != nil {
		fatalf("building task: %v", err)
	}
	fmt.Printf("training rows: %d (%d dirty), candidates: %d, possible worlds: %s\n",
		dirty.NumRows(), len(task.Repairs.DirtyRows),
		task.Dataset().TotalCandidates(), task.Dataset().WorldCount())

	gt, err := cleaning.GroundTruthAccuracy(task)
	if err != nil {
		fatalf("%v", err)
	}
	def, err := cleaning.DefaultCleanAccuracy(task)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("ground-truth test accuracy: %.4f\ndefault-cleaning accuracy:  %.4f\n", gt, def)

	opts := cleaning.DefaultOptions()
	opts.MaxSteps = *budget
	opts.Rand = rand.New(rand.NewSource(*seed))
	var res *cleaning.Result
	if *random {
		res, err = cleaning.RandomClean(task, opts)
	} else {
		res, err = cleaning.CPClean(task, opts)
	}
	if err != nil {
		fatalf("cleaning: %v", err)
	}

	fmt.Printf("cleaned %d examples", len(res.Order))
	if res.AllCertainStep >= 0 {
		fmt.Printf("; all validation examples CP'ed after %d", res.AllCertainStep)
	}
	fmt.Println()
	fmt.Printf("final test accuracy: %.4f (gap closed %.0f%%)\n",
		res.FinalAccuracy, 100*cleaning.GapClosed(res.FinalAccuracy, def, gt))

	if *outPath != "" {
		cleanedTable := materialize(task, res)
		f, err := os.Create(*outPath)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		if err := table.WriteCSV(f, cleanedTable); err != nil {
			fatalf("writing %s: %v", *outPath, err)
		}
		fmt.Printf("cleaned table written to %s\n", *outPath)
	}
}

// materialize applies the oracle repairs of cleaned rows (and default
// candidates elsewhere) back onto the dirty table.
func materialize(task *cleaning.Task, res *cleaning.Result) *table.Table {
	out := task.Dirty.Clone()
	choice := task.DefaultWorld()
	for _, row := range res.Order {
		choice[row] = task.Repairs.Truth[row]
	}
	for i := 0; i < out.NumRows(); i++ {
		for ci, cell := range task.Repairs.Overrides[i][choice[i]] {
			c := out.Cols[ci]
			if cell.Kind == table.Numeric {
				c.Nums[i] = cell.Num
			} else {
				c.Cats[i] = cell.Cat
			}
			c.Missing[i] = false
		}
	}
	return out
}

func readTable(path string) *table.Table {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	t, err := table.ReadCSV(f)
	if err != nil {
		fatalf("reading %s: %v", path, err)
	}
	return t
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "cpclean: "+format+"\n", args...)
	os.Exit(1)
}
