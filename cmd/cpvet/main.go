// Command cpvet runs the project-invariant analyzer suite (see
// internal/tools/cpvet) over the repository and exits nonzero if any
// finding survives the //cpvet:allow annotations.
//
// Usage:
//
//	go run ./cmd/cpvet [-json] [-list] [packages]
//
// Packages default to ./... relative to the module root, so `make
// verify-static` and CI both lint the whole repository regardless of the
// working directory they start in.
//
// -json emits one finding object per line (analyzer, position, message,
// allow-status) for CI and editor consumption; allowed findings are
// included in the stream but do not affect the exit status. -list prints
// the registered analyzers and exits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/tools/cpvet"
)

// jsonFinding is the one-per-line machine output shape of a finding.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
	Allowed  bool   `json:"allowed"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit one JSON finding object per line (allowed findings included, exit status unaffected by them)")
	list := flag.Bool("list", false, "print the registered analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range cpvet.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cpvet:", err)
		os.Exit(2)
	}

	var failing int
	if *jsonOut {
		diags, err := cpvet.RunAll(root, patterns, cpvet.All(), cpvet.DefaultConfig())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			rel := d.Pos.Filename
			if r, err := filepath.Rel(root, rel); err == nil {
				rel = r
			}
			if err := enc.Encode(jsonFinding{
				Analyzer: d.Analyzer,
				File:     rel,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
				Allowed:  d.Allowed,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "cpvet:", err)
				os.Exit(2)
			}
			if !d.Allowed {
				failing++
			}
		}
	} else {
		diags, err := cpvet.Run(root, patterns, cpvet.All(), cpvet.DefaultConfig())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(d)
		}
		failing = len(diags)
	}
	if failing > 0 {
		fmt.Fprintf(os.Stderr, "cpvet: %d finding(s)\n", failing)
		os.Exit(1)
	}
}

// moduleRoot locates the enclosing module so package patterns resolve the
// same way from any working directory.
func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a Go module")
	}
	return filepath.Dir(gomod), nil
}
