// Command cpvet runs the project-invariant analyzer suite (see
// internal/tools/cpvet) over the repository and exits nonzero if any
// finding survives the //cpvet:allow annotations.
//
// Usage:
//
//	go run ./cmd/cpvet [packages]
//
// Packages default to ./... relative to the module root, so `make
// verify-static` and CI both lint the whole repository regardless of the
// working directory they start in.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/tools/cpvet"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cpvet:", err)
		os.Exit(2)
	}
	diags, err := cpvet.Run(root, patterns, cpvet.All(), cpvet.DefaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "cpvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot locates the enclosing module so package patterns resolve the
// same way from any working directory.
func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a Go module")
	}
	return filepath.Dir(gomod), nil
}
