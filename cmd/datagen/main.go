// Command datagen generates the paper's evaluation datasets as CSV files:
// a complete ground-truth table plus a dirty copy with injected missing
// values, split into train/val/test.
//
// Usage:
//
//	datagen -dataset Supreme|Bank|Puma|BabyProduct -out dir/
//	        [-n 0] [-val 1000] [-test 1000] [-rate 0.2] [-seed 1]
//
// Writes <out>/<dataset>_{train_dirty,train_truth,val,test}.csv — the four
// files cmd/cpclean consumes.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
	"repro/internal/knn"
	"repro/internal/missing"
	"repro/internal/synth"
	"repro/internal/table"
)

func main() {
	name := flag.String("dataset", "Supreme", "dataset: Supreme|Bank|Puma|BabyProduct")
	out := flag.String("out", ".", "output directory")
	n := flag.Int("n", 0, "total rows (0 = the dataset's native size)")
	valN := flag.Int("val", 1000, "validation rows")
	testN := flag.Int("test", 1000, "test rows")
	rate := flag.Float64("rate", 0.2, "missing-cell rate (synthetic-error datasets)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	spec, err := experiments.SpecByName(*name)
	if err != nil {
		fatalf("%v", err)
	}
	total := spec.NativeRows
	if *n > 0 {
		total = *n
	}
	if *valN+*testN >= total {
		fatalf("val+test (%d) must be smaller than total rows (%d)", *valN+*testN, total)
	}
	full := spec.Generate(total, *seed)
	rng := rand.New(rand.NewSource(*seed + 1000))
	split, err := full.SplitRandom(rng, *valN, *testN)
	if err != nil {
		fatalf("%v", err)
	}
	truth := split.Train
	dirty := truth.Clone()
	if spec.RealErrors {
		synth.InjectBabyProductErrors(dirty, 0.118, rng)
	} else {
		imp, err := missing.FeatureImportance(truth, experiments.ModelK, knn.NegEuclidean{}, rng, 0)
		if err != nil {
			fatalf("%v", err)
		}
		if err := missing.InjectMNARBiased(dirty, *rate, 1.2, imp, rng); err != nil {
			fatalf("%v", err)
		}
	}

	base := strings.ToLower(spec.Name)
	write := func(suffix string, t *table.Table) {
		path := filepath.Join(*out, fmt.Sprintf("%s_%s.csv", base, suffix))
		f, err := os.Create(path)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		if err := table.WriteCSV(f, t); err != nil {
			fatalf("writing %s: %v", path, err)
		}
		fmt.Printf("wrote %s (%d rows)\n", path, t.NumRows())
	}
	write("train_dirty", dirty)
	write("train_truth", truth)
	write("val", split.Val)
	write("test", split.Test)
	fmt.Printf("dirty rows: %d/%d (%.1f%% cells missing)\n",
		len(dirty.DirtyRows()), dirty.NumRows(), 100*dirty.MissingCellRate())
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "datagen: "+format+"\n", args...)
	os.Exit(1)
}
