// Command cpquery answers CP queries (Q1 checking, Q2 counting) for test
// points against an incomplete training CSV.
//
// Usage:
//
//	cpquery -train dirty.csv -points points.csv [-k 3] [-alg auto]
//	        [-max-candidates 125]
//
// -train is a CSV with missing cells (last column = integer label); its
// candidate repairs follow the paper's §5.1 protocol (five-point numeric,
// top-4+other categorical). -points is a CSV of complete rows with the same
// feature header (a label column is accepted and ignored). For every point
// the tool prints the Q2 world fractions, whether the prediction is CP'ed,
// and the entropy.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/knn"
	"repro/internal/repair"
	"repro/internal/table"
)

func main() {
	trainPath := flag.String("train", "", "incomplete training CSV (required)")
	pointsPath := flag.String("points", "", "test points CSV (required)")
	k := flag.Int("k", 3, "K for the K-NN classifier")
	algName := flag.String("alg", "auto", "algorithm: auto|ss-dc|ss-dc-mc|ss-exact|ss-fast|brute-force")
	maxCands := flag.Int("max-candidates", 125, "cap on candidates per row")
	flag.Parse()

	if *trainPath == "" || *pointsPath == "" {
		fatalf("-train and -points are required")
	}
	alg, err := parseAlg(*algName)
	if err != nil {
		fatalf("%v", err)
	}
	train := readTable(*trainPath)
	points := readTable(*pointsPath)

	enc := table.FitEncoder(train, 0)
	reps, err := repair.Generate(train, nil, enc, repair.Options{MaxRowCandidates: *maxCands})
	if err != nil {
		fatalf("%v", err)
	}
	d := reps.Dataset
	fmt.Printf("training rows: %d (%d uncertain), possible worlds: %s\n\n",
		d.N(), len(d.UncertainRows()), d.WorldCount())

	for i := 0; i < points.NumRows(); i++ {
		t := enc.EncodeRow(points, i, nil)
		inst := core.InstanceFor(d, knn.NegEuclidean{}, t)
		q2, err := core.Q2(inst, *k, alg)
		if err != nil {
			fatalf("point %d: %v", i, err)
		}
		var q1 []bool
		if d.NumLabels == 2 {
			q1, err = core.MMCheck(inst, *k)
			if err != nil {
				fatalf("point %d: %v", i, err)
			}
		} else {
			q1 = core.CheckFromNormalized(q2)
		}
		pred := core.ArgmaxProb(q2)
		certain := false
		for _, b := range q1 {
			certain = certain || b
		}
		fmt.Printf("point %d: prediction=%d certain=%v entropy=%.4f fractions=", i, pred, certain, core.Entropy(q2))
		for y, p := range q2 {
			if y > 0 {
				fmt.Print(" ")
			}
			fmt.Printf("%d:%.4f", y, p)
		}
		fmt.Println()
	}
}

func parseAlg(s string) (core.Algorithm, error) {
	switch s {
	case "auto":
		return core.Auto, nil
	case "ss-dc":
		return core.SSDC, nil
	case "ss-dc-mc":
		return core.SSDCMC, nil
	case "ss-exact":
		return core.SSExact, nil
	case "ss-fast":
		return core.SSFast, nil
	case "brute-force":
		return core.BruteForce, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", s)
	}
}

func readTable(path string) *table.Table {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	t, err := table.ReadCSV(f)
	if err != nil {
		fatalf("reading %s: %v", path, err)
	}
	return t
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "cpquery: "+format+"\n", args...)
	os.Exit(1)
}
